package main

import (
	"fmt"
	"time"

	"repro/internal/congest"
	"repro/internal/detail"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/gridrouter"
	"repro/internal/hightower"
	"repro/internal/plane"
	"repro/internal/router"
	"repro/internal/search"
	"repro/internal/seq"
)

// runC1 demonstrates that Lee–Moore is a special case of the general
// search: grid successors with h = 0 reproduce the wavefront's optimum and
// comparable work; adding the Manhattan heuristic only shrinks the search.
func runC1(cfg runConfig) {
	t := &table{header: []string{"scene", "method", "expanded", "length"}}
	seeds := 3
	if cfg.quick {
		seeds = 1
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		ix, free := randomScene(seed+100, 200, 8)
		grid, err := gridrouter.FromPlane(ix, 1)
		if err != nil {
			panic(err)
		}
		a, b := free(), free()
		wave, err := grid.LeeMoore(a, b)
		if err != nil || !wave.Found {
			continue
		}
		scene := fmt.Sprintf("seed %d %v->%v", seed, a, b)
		t.add(scene, "Lee-Moore wavefront", wave.Stats.Expanded, wave.Length)
		for _, strat := range []search.Strategy{search.BreadthFirst, search.BestFirst, search.AStar} {
			res, err := grid.Route(a, b, strat)
			if err != nil || !res.Found {
				panic("grid route failed")
			}
			marker := ""
			if res.Length != wave.Length {
				marker = "  << LENGTH MISMATCH"
			}
			t.add("", "search framework: "+strat.String(), res.Stats.Expanded,
				fmt.Sprint(res.Length, marker))
		}
	}
	t.print()
	fmt.Println("  (h=0 strategies match the wavefront's optimum; A* shrinks the same search)")
}

// runC2 measures the gridless win: expansions and time per route as the
// die grows, gridless A* versus grid A* and Lee–Moore.
func runC2(cfg runConfig) {
	dies := []geom.Coord{100, 200, 400}
	if !cfg.quick {
		dies = append(dies, 800)
	}
	t := &table{header: []string{
		"die", "grid pts", "gridless exp", "grid A* exp", "Lee-Moore exp",
		"gridless time", "Lee-Moore time", "speedup"}}
	for _, die := range dies {
		cells := int(die / 40)
		var glExp, gaExp, lmExp []int
		var glT, lmT time.Duration
		queries := 6
		if cfg.quick {
			queries = 3
		}
		ix, free := randomScene(die, die, cells)
		grid, err := gridrouter.FromPlane(ix, 1)
		if err != nil {
			panic(err)
		}
		r := router.New(ix, router.Options{})
		for q := 0; q < queries; q++ {
			a, b := free(), free()
			start := time.Now()
			route, err := r.RoutePoints(a, b)
			glT += time.Since(start)
			if err != nil || !route.Found {
				continue
			}
			start = time.Now()
			wave, err := grid.LeeMoore(a, b)
			lmT += time.Since(start)
			if err != nil || !wave.Found {
				continue
			}
			ga, err := grid.Route(a, b, search.AStar)
			if err != nil {
				panic(err)
			}
			if wave.Length != route.Length {
				fmt.Printf("  !! length mismatch at die %d: %d vs %d\n", die, wave.Length, route.Length)
			}
			glExp = append(glExp, route.Stats.Expanded)
			gaExp = append(gaExp, ga.Stats.Expanded)
			lmExp = append(lmExp, wave.Stats.Expanded)
		}
		t.add(die, grid.Points(), fmtF(mean(glExp)), fmtF(mean(gaExp)), fmtF(mean(lmExp)),
			glT.Round(time.Microsecond), lmT.Round(time.Microsecond),
			fmtR(float64(lmT)/float64(glT)))
	}
	t.print()
	fmt.Println("  (grid work grows with die area; gridless work tracks obstacle count only)")
}

// runC3 measures the Hightower trade: success rate within a probe budget,
// work, and length quality versus the optimal A* route.
func runC3(cfg runConfig) {
	budgets := []int{4, 8, 16, 64}
	seeds := 30
	if cfg.quick {
		seeds = 8
	}
	t := &table{header: []string{
		"probe budget", "probe success", "A* success", "avg probes", "avg len vs optimal"}}
	for _, budget := range budgets {
		tot, ok, aok := 0, 0, 0
		var probes []int
		var ratioSum float64
		var ratioN int
		for seed := int64(0); seed < int64(seeds); seed++ {
			ix, free := randomScene(seed*13+7, 500, 60)
			r := router.New(ix, router.Options{})
			for q := 0; q < 6; q++ {
				a, b := free(), free()
				res := hightower.Route(ix, a, b, hightower.Options{MaxLines: budget})
				route, err := r.RoutePoints(a, b)
				if err != nil {
					panic(err)
				}
				tot++
				if route.Found {
					aok++
				}
				if res.Found {
					ok++
					probes = append(probes, res.Probes)
					if route.Found && route.Length > 0 {
						ratioSum += float64(res.Length) / float64(route.Length)
						ratioN++
					}
				}
			}
		}
		ratio := 0.0
		if ratioN > 0 {
			ratio = ratioSum / float64(ratioN)
		}
		t.add(budget,
			fmt.Sprintf("%d/%d (%.0f%%)", ok, tot, 100*float64(ok)/float64(tot)),
			fmt.Sprintf("%d/%d", aok, tot),
			fmtF(mean(probes)), fmtR(ratio))
	}
	t.print()
	fmt.Println("  (the quick first try fails on a fraction of connections and returns longer")
	fmt.Println("   routes; the maze search connects everything at optimal length)")
}

// runC4 compares the paper's independent regime against classical
// sequential routing with three net orderings.
func runC4(cfg runConfig) {
	seeds := 4
	if cfg.quick {
		seeds = 2
	}
	t := &table{header: []string{"regime", "routed", "failed", "length (routed)", "expanded", "time"}}
	type agg struct {
		length   geom.Coord
		routed   int
		failed   int
		expanded int
		elapsed  time.Duration
	}
	var ind agg
	seqAgg := map[seq.Ordering]*agg{
		seq.LayoutOrder: {}, seq.LongestFirst: {}, seq.ShortestFirst: {},
	}
	for seed := int64(0); seed < int64(seeds); seed++ {
		l := randomNetsLayout(seed*311+5, 14, 40)
		ix, err := plane.FromLayout(l)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := router.New(ix, router.Options{}).RouteLayout(l, 1)
		if err != nil {
			panic(err)
		}
		ind.elapsed += time.Since(start)
		ind.length += res.TotalLength
		ind.routed += len(res.Nets) - len(res.Failed)
		ind.failed += len(res.Failed)
		ind.expanded += res.Stats.Expanded
		for _, ord := range []seq.Ordering{seq.LayoutOrder, seq.LongestFirst, seq.ShortestFirst} {
			sres, err := seq.Route(l, seq.Options{Ordering: ord})
			if err != nil {
				panic(err)
			}
			a := seqAgg[ord]
			a.elapsed += sres.Elapsed
			a.length += sres.TotalLength
			a.routed += len(sres.Nets) - len(sres.Failed)
			a.failed += len(sres.Failed)
			a.expanded += sres.Stats.Expanded
		}
	}
	t.add("independent (paper)", ind.routed, ind.failed, ind.length, ind.expanded, ind.elapsed.Round(time.Millisecond))
	for _, ord := range []seq.Ordering{seq.LayoutOrder, seq.LongestFirst, seq.ShortestFirst} {
		a := seqAgg[ord]
		t.add("sequential "+ord.String(), a.routed, a.failed, a.length, a.expanded, a.elapsed.Round(time.Millisecond))
	}
	t.print()
	fmt.Println("  (sequential totals cover routed nets only — failed nets contribute no wire;")
	fmt.Println("   sequential routing searches more, fails nets outright, and its quality")
	fmt.Println("   depends on the ordering; independent routing has no ordering problem)")
}

// runC5 exercises the congestion extension: the funnel layout pushes more
// nets through a slit than fit; the second pass diverts the affected nets.
func runC5(cfg runConfig) {
	t := &table{header: []string{"nets", "slit capacity", "overflow pass1", "overflow pass2",
		"rerouted", "len pass1", "len pass2"}}
	for _, nNets := range []int{4, 8, 12} {
		l := funnelLayout(nNets)
		res, err := congest.TwoPass(l, 2, 300, 1)
		if err != nil {
			panic(err)
		}
		cap := "-"
		for _, p := range res.Before.Passages {
			if p.Between == [2]int{0, 1} || p.Between == [2]int{1, 0} {
				cap = fmt.Sprint(p.Capacity)
			}
		}
		if res.Second == nil {
			t.add(nNets, cap, res.Before.TotalOverflow(), "-", 0, res.First.TotalLength, "-")
			continue
		}
		t.add(nNets, cap, res.Before.TotalOverflow(), res.After.TotalOverflow(),
			len(res.Rerouted), res.First.TotalLength, res.Second.TotalLength)
	}
	t.print()
	fmt.Println("  (the second pass trades wirelength for overflow relief, as the paper expects)")
}

// runC7 iterates the congestion loop to convergence: the negotiated engine
// (present + history penalty) against the paper's single reroute on the
// same funnel series.
func runC7(cfg runConfig) {
	t := &table{header: []string{"nets", "passes", "overflow trail", "converged",
		"two-pass overflow", "final length"}}
	sizes := []int{4, 8, 12}
	if !cfg.quick {
		sizes = append(sizes, 16)
	}
	for _, nNets := range sizes {
		l := funnelLayout(nNets)
		res, err := congest.Negotiate(l, congest.Config{
			Pitch: 2, Weight: 60, MaxPasses: 8, Workers: 1, HistoryGain: 1,
		})
		if err != nil {
			panic(err)
		}
		trail := ""
		for i, p := range res.Passes {
			if i > 0 {
				trail += " -> "
			}
			trail += fmt.Sprint(p.Overflow)
		}
		two, err := congest.TwoPass(l, 2, 60, 1)
		if err != nil {
			panic(err)
		}
		twoOver := two.Before.TotalOverflow()
		if two.After != nil {
			twoOver = two.After.TotalOverflow()
		}
		t.add(nNets, len(res.Passes), trail, res.Converged, twoOver,
			res.Passes[len(res.Passes)-1].TotalLength)
	}
	t.print()
	fmt.Println("  (history keeps pressure on passages that overflowed before, so the loop")
	fmt.Println("   keeps draining overflow after the single penalized pass has done all it can)")
}

// runC8 scales the router to the macro-grid workload — growing macro
// arrays with neighbor buses, multi-terminal control trees and cross-chip
// hauls — and reports routing time, search effort and effort per net. The
// per-net effort tracking net length rather than the 16x-growing obstacle
// count is the index-driven hot path at work (O(log n) corner and
// visibility queries instead of per-cell scans).
func runC8(cfg runConfig) {
	t := &table{header: []string{"grid", "cells", "nets", "time", "expanded", "exp/net", "length"}}
	sizes := [][2]int{{8, 8}, {16, 16}}
	if !cfg.quick {
		sizes = append(sizes, [2]int{32, 32})
	}
	for _, sz := range sizes {
		l, err := gen.MacroGrid(sz[0], sz[1], 40, 30, 12, 9)
		if err != nil {
			panic(err)
		}
		ix, err := plane.FromLayout(l)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := router.New(ix, router.Options{}).RouteLayout(l, 0)
		if err != nil {
			panic(err)
		}
		elapsed := time.Since(start).Round(time.Millisecond)
		if len(res.Failed) != 0 {
			panic(fmt.Sprintf("C8: %d failed nets", len(res.Failed)))
		}
		t.add(fmt.Sprintf("%dx%d", sz[0], sz[1]), len(l.Cells), len(l.Nets),
			elapsed, res.Stats.Expanded, res.Stats.Expanded/len(l.Nets), res.TotalLength)
	}
	t.print()
	fmt.Println("  (per-net effort tracks net length, not obstacle count: per-expansion")
	fmt.Println("   cost is O(log n + answers) in the cells, not O(n) as a scan would be)")
}

// runC6 times the full flow: global routing versus the detailed
// track-assignment stage, across growing chips.
func runC6(cfg runConfig) {
	sizes := []struct{ cells, nets int }{{8, 24}, {16, 48}, {24, 96}}
	if !cfg.quick {
		sizes = append(sizes, struct{ cells, nets int }{32, 192})
	}
	t := &table{header: []string{"cells", "nets", "global time", "detail time",
		"global/total", "tracks", "wires"}}
	for _, sz := range sizes {
		l := randomNetsLayout(int64(sz.cells)*7+3, sz.cells, sz.nets)
		ix, err := plane.FromLayout(l)
		if err != nil {
			panic(err)
		}
		start := time.Now()
		res, err := router.New(ix, router.Options{}).RouteLayout(l, 1)
		if err != nil {
			panic(err)
		}
		globalT := time.Since(start)
		dstart := time.Now()
		dres := detail.Assign(res, detail.Options{})
		la := detail.AssignLayers(res)
		detailT := time.Since(dstart)
		frac := float64(globalT) / float64(globalT+detailT) * 100
		t.add(len(l.Cells), len(l.Nets), globalT.Round(time.Microsecond),
			detailT.Round(time.Microsecond),
			fmt.Sprintf("%.0f%%", frac), dres.TotalTracks,
			fmt.Sprintf("%d (+%d vias)", dres.Wires, la.Vias))
	}
	t.print()
	fmt.Println("  (NOTE: the paper reports global < detailed on its full detailed router with")
	fmt.Println("   layer assignment; our detailed stage is the sketched channel/track step only,")
	fmt.Println("   so the ratio inverts — see EXPERIMENTS.md for the substitution discussion)")
}
