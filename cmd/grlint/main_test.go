package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/analysis"
)

var sample = []analysis.Finding{
	{Analyzer: "maporder", File: "/repo/eco.go", Line: 245, Column: 2,
		Message: "range over map: iteration order is nondeterministic"},
	{Analyzer: "recoverguard", File: "/repo/eco.go", Line: 192, Column: 10,
		Message: "recover() outside a blessed guard"},
}

func TestWriteJSONRoundTrips(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, sample); err != nil {
		t.Fatal(err)
	}
	var got []analysis.Finding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(got) != 2 || got[0] != sample[0] || got[1] != sample[1] {
		t.Errorf("round trip = %+v, want %+v", got, sample)
	}
}

func TestWriteJSONEmptyIsArray(t *testing.T) {
	var buf bytes.Buffer
	if err := writeJSON(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if s := strings.TrimSpace(buf.String()); s != "[]" {
		t.Errorf("empty findings encode as %q, want []", s)
	}
}

func TestWriteJSONFieldNames(t *testing.T) {
	// CI annotators key on these exact field names; pin them.
	var buf bytes.Buffer
	if err := writeJSON(&buf, sample[:1]); err != nil {
		t.Fatal(err)
	}
	var raw []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &raw); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"analyzer", "file", "line", "column", "message"} {
		if _, ok := raw[0][key]; !ok {
			t.Errorf("JSON object missing %q key: %v", key, raw[0])
		}
	}
}

func TestWriteTextFormat(t *testing.T) {
	var buf bytes.Buffer
	writeText(&buf, sample, "/repo")
	out := buf.String()
	if !strings.Contains(out, "eco.go:245:2: maporder: range over map") {
		t.Errorf("text output missing compiler-style line:\n%s", out)
	}
	if !strings.Contains(out, "grlint: 2 finding(s)") {
		t.Errorf("text output missing summary:\n%s", out)
	}
}

func TestWriteTextCleanIsSilent(t *testing.T) {
	var buf bytes.Buffer
	writeText(&buf, nil, ".")
	if buf.Len() != 0 {
		t.Errorf("clean run produced output: %q", buf.String())
	}
}
