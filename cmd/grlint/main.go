// Command grlint runs the project's invariant analyzers (maporder,
// lockcontract, ctxpoll, atomicwrite, recoverguard — see internal/analysis)
// over the module and reports findings.
//
// Usage:
//
//	go run ./cmd/grlint ./...          # text findings, exit 1 if any
//	go run ./cmd/grlint -json ./...    # machine-readable diagnostics
//
// Exit status: 0 clean, 1 findings, 2 load/type-check failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit findings as a JSON array instead of text")
	dir := flag.String("C", ".", "directory to resolve package patterns in")
	flag.Parse()
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	findings, err := analysis.RunScoped(*dir, patterns...)
	if err != nil {
		fmt.Fprintf(os.Stderr, "grlint: %v\n", err)
		os.Exit(2)
	}
	if *jsonOut {
		if err := writeJSON(os.Stdout, findings); err != nil {
			fmt.Fprintf(os.Stderr, "grlint: %v\n", err)
			os.Exit(2)
		}
	} else {
		writeText(os.Stdout, findings, *dir)
	}
	if len(findings) > 0 {
		os.Exit(1)
	}
}

// writeJSON emits findings as one JSON array (always an array, never null,
// so `jq length` and CI annotators need no special casing).
func writeJSON(w io.Writer, findings []analysis.Finding) error {
	if findings == nil {
		findings = []analysis.Finding{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(findings)
}

// writeText emits compiler-style file:line:col lines, paths relativized to
// dir when possible.
func writeText(w io.Writer, findings []analysis.Finding, dir string) {
	for _, f := range findings {
		file := f.File
		if rel, err := filepath.Rel(dir, file); err == nil && !filepath.IsAbs(rel) {
			file = rel
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", file, f.Line, f.Column, f.Analyzer, f.Message)
	}
	if n := len(findings); n > 0 {
		fmt.Fprintf(w, "grlint: %d finding(s)\n", n)
	}
}
