// Command grouter globally routes a general-cell layout through the
// prepared-session Engine API.
//
// Usage:
//
//	grouter -input chip.json                  # route and report
//	grouter -input chip.json -corner -workers 8
//	grouter -input chip.json -congestion -pitch 4 -weight 100
//	grouter -input chip.json -congestion -passes 2 -history 0   # the paper's plain two-pass flow
//	grouter -input chip.json -congestion -timeout 30s           # budgeted: partial report on expiry
//	grouter -input chip.json -congestion -checkpoint run.ckpt   # crash-safe: checkpoint as it goes
//	grouter -input chip.json -congestion -checkpoint run.ckpt -resume   # continue an interrupted run
//	grouter -input chip.json -tracks          # include detailed tracks
//	grouter -input chip.json -wires           # dump the routed wires
//
// SIGINT/SIGTERM cancel the run cooperatively: the router finishes the rip
// in flight, writes a final checkpoint (with -checkpoint), prints the
// partial per-pass report and exits 1. Rerunning with -resume continues
// from the checkpoint and produces routes byte-identical to an
// uninterrupted run.
//
// Exit codes: 0 success, 1 failure or interruption, 2 usage, 3 the report
// contains DEGRADED (panic-poisoned) nets — pass -degraded-ok to treat
// degraded reports as success.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro"
	"repro/internal/viz"
)

func main() {
	var (
		input      = flag.String("input", "", "layout JSON file (required)")
		workers    = flag.Int("workers", 0, "routing workers (0 = GOMAXPROCS)")
		corner     = flag.Bool("corner", false, "enable the inverted-corner epsilon rule")
		congestion = flag.Bool("congestion", false, "run the negotiated congestion flow")
		pitch      = flag.Int64("pitch", 4, "wire pitch for congestion capacity")
		weight     = flag.Int64("weight", 100, "detour accepted per congested crossing")
		passes     = flag.Int("passes", 8, "max congestion passes (with -congestion)")
		history    = flag.Int("history", 1, "history gain per past overflow (0 = paper's plain penalty)")
		weightStep = flag.Int64("weightstep", 0, "present-cost escalation per pass (0 = flat weight)")
		historyW   = flag.Int64("historyweight", 0, "history step decoupled from -weight (0 = coupled)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget; on expiry the partial per-pass report is printed (0 = none)")
		checkpoint = flag.String("checkpoint", "", "negotiation checkpoint file (with -congestion): written atomically at pass boundaries, mid-pass per -checkpointevery, and on interruption")
		ckptEvery  = flag.Int("checkpointevery", 64, "mid-pass checkpoint cadence in rip-ups (0 = pass boundaries only; with -checkpoint)")
		resume     = flag.Bool("resume", false, "resume the -congestion run from the -checkpoint file instead of starting fresh")
		tracks     = flag.Bool("tracks", false, "run detailed track assignment")
		wires      = flag.Bool("wires", false, "print the routed segments")
		draw       = flag.Bool("draw", false, "render the routed layout as ASCII art")
		degradedOK = flag.Bool("degraded-ok", false, "exit 0 even when the report contains DEGRADED (panic-poisoned) nets")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "grouter: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatal(err)
	}
	l, err := genroute.ReadLayout(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	s := l.Summary()
	fmt.Printf("layout %q: %d cells, %d nets, %d pins, %.1f%% utilization\n",
		l.Name, s.Cells, s.Nets, s.Pins, s.Utilization)

	opts := []genroute.Option{
		genroute.WithWorkers(*workers),
		genroute.WithPitch(*pitch),
		genroute.WithPenaltyWeight(*weight),
		genroute.WithMaxPasses(*passes),
		genroute.WithHistory(*history, *historyW),
		genroute.WithWeightStep(*weightStep),
	}
	if *corner {
		opts = append(opts, genroute.WithCornerRule())
	}
	if *checkpoint != "" {
		opts = append(opts, genroute.WithCheckpointFile(*checkpoint, *ckptEvery))
	}
	if *resume && (*checkpoint == "" || !*congestion) {
		fmt.Fprintln(os.Stderr, "grouter: -resume requires -congestion and -checkpoint")
		os.Exit(2)
	}
	prepStart := time.Now()
	e, err := genroute.NewEngine(l, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session prepared in %v (validate + obstacle index + passage extraction)\n",
		time.Since(prepStart).Round(time.Millisecond))

	// SIGINT/SIGTERM cancel cooperatively: the run stops at the next poll
	// point, writes its final checkpoint (with -checkpoint) and reports the
	// partial state.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *congestion {
		var res *genroute.NegotiatedResult
		var err error
		if *resume {
			cf, oerr := os.Open(*checkpoint)
			if oerr != nil {
				fatal(oerr)
			}
			cp, rerr := genroute.ReadCheckpoint(cf)
			cf.Close()
			if rerr != nil {
				fatal(rerr)
			}
			where := "a pass boundary"
			if cp.InPass() {
				where = "mid-pass"
			}
			fmt.Printf("resuming from %s: %d passes recorded, checkpoint at %s\n",
				*checkpoint, cp.Passes(), where)
			res, err = e.ResumeNegotiated(ctx, cp)
		} else {
			res, err = e.RouteNegotiated(ctx)
		}
		interrupted := errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled)
		if err != nil && !interrupted {
			fatal(err)
		}
		if res == nil {
			fatal(err)
		}
		for i, p := range res.Passes {
			fmt.Printf("pass %d: length=%d overflow=%d (over %d passages), rerouted %d nets, routed %d/%d, %d layout expansions, pass took %v\n",
				i+1, p.TotalLength, p.Overflow, p.Overflowed,
				len(p.Rerouted), p.Routed, s.Nets, p.Stats.Expanded, p.Elapsed.Round(time.Microsecond))
		}
		if n := len(res.Panics); n > 0 {
			fmt.Printf("DEGRADED: %d nets poisoned by routing panics (kept unrouted; see first below)\n%v\n",
				n, res.Panics[0])
		}
		switch {
		case interrupted:
			what := fmt.Sprintf("TIMEOUT after %v", *timeout)
			if errors.Is(err, context.Canceled) {
				what = "INTERRUPTED"
			}
			fmt.Printf("%s: best state kept (%d passes recorded, session overflow %d)\n",
				what, len(res.Passes), e.Overflow())
			if *checkpoint != "" {
				fmt.Printf("checkpoint saved to %s; rerun with -resume to continue\n", *checkpoint)
			}
			os.Exit(1)
		case res.Converged && len(res.Passes) == 1:
			fmt.Println("no congestion: single pass suffices")
		case res.Converged:
			fmt.Printf("converged: zero overflow after %d passes\n", len(res.Passes))
		case res.Stalled:
			fmt.Printf("stalled after %d passes with overflow %d (raise -weight or -history)\n",
				len(res.Passes), res.FinalMap().TotalOverflow())
		default:
			fmt.Printf("pass budget exhausted after %d passes with overflow %d\n",
				len(res.Passes), res.FinalMap().TotalOverflow())
		}
		report(l, res.Final(), *tracks, *wires, *draw)
		if len(res.Panics) > 0 && !*degradedOK {
			os.Exit(3)
		}
		return
	}

	res, err := e.RouteAll(ctx)
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, context.Canceled) {
		what := fmt.Sprintf("TIMEOUT after %v", *timeout)
		if errors.Is(err, context.Canceled) {
			what = "INTERRUPTED"
		}
		routed := len(res.Nets) - len(res.Failed)
		fmt.Printf("%s: %d/%d nets routed, partial length %d\n",
			what, routed, len(res.Nets), res.TotalLength)
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	if n := len(res.Panics); n > 0 {
		fmt.Printf("DEGRADED: %d nets poisoned by routing panics (kept unrouted; see first below)\n%v\n",
			n, res.Panics[0])
	}
	report(l, res, *tracks, *wires, *draw)
	if len(res.Panics) > 0 && !*degradedOK {
		os.Exit(3)
	}
}

// report prints the routing summary, optional tracks and wires.
func report(l *genroute.Layout, res *genroute.Result, tracks, wires, draw bool) {
	fmt.Printf("routed %d nets in %v: total length %d, %d expansions\n",
		len(res.Nets), res.Elapsed.Round(1000), res.TotalLength, res.Stats.Expanded)
	if len(res.Failed) > 0 {
		fmt.Printf("FAILED nets: %v\n", res.Failed)
	}
	if err := genroute.CheckConnectivity(l, res); err != nil {
		fmt.Printf("CONNECTIVITY ERROR: %v\n", err)
		os.Exit(1)
	}
	if tracks {
		tr := genroute.AssignTracks(res, 0)
		fmt.Printf("detailed: %d wires in %d channels, %d total tracks (max %d) in %v\n",
			tr.Wires, len(tr.Channels), tr.TotalTracks, tr.MaxTracks, tr.Elapsed.Round(1000))
	}
	if wires {
		for i := range res.Nets {
			nr := &res.Nets[i]
			fmt.Printf("net %s (length %d):\n", nr.Net, nr.Length)
			for _, seg := range nr.SortedSegments() {
				fmt.Printf("  %v\n", seg)
			}
		}
	}
	if draw {
		segs := make([][]genroute.Seg, len(res.Nets))
		for i := range res.Nets {
			segs[i] = res.Nets[i].Segments
		}
		fmt.Print(viz.Layout(l, segs, 0))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grouter:", err)
	os.Exit(1)
}
