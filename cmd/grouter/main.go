// Command grouter globally routes a general-cell layout through the
// prepared-session Engine API.
//
// Usage:
//
//	grouter -input chip.json                  # route and report
//	grouter -input chip.json -corner -workers 8
//	grouter -input chip.json -congestion -pitch 4 -weight 100
//	grouter -input chip.json -congestion -passes 2 -history 0   # the paper's plain two-pass flow
//	grouter -input chip.json -congestion -timeout 30s           # budgeted: partial report on expiry
//	grouter -input chip.json -tracks          # include detailed tracks
//	grouter -input chip.json -wires           # dump the routed wires
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"time"

	"repro"
	"repro/internal/viz"
)

func main() {
	var (
		input      = flag.String("input", "", "layout JSON file (required)")
		workers    = flag.Int("workers", 0, "routing workers (0 = GOMAXPROCS)")
		corner     = flag.Bool("corner", false, "enable the inverted-corner epsilon rule")
		congestion = flag.Bool("congestion", false, "run the negotiated congestion flow")
		pitch      = flag.Int64("pitch", 4, "wire pitch for congestion capacity")
		weight     = flag.Int64("weight", 100, "detour accepted per congested crossing")
		passes     = flag.Int("passes", 8, "max congestion passes (with -congestion)")
		history    = flag.Int("history", 1, "history gain per past overflow (0 = paper's plain penalty)")
		weightStep = flag.Int64("weightstep", 0, "present-cost escalation per pass (0 = flat weight)")
		historyW   = flag.Int64("historyweight", 0, "history step decoupled from -weight (0 = coupled)")
		timeout    = flag.Duration("timeout", 0, "wall-clock budget; on expiry the partial per-pass report is printed (0 = none)")
		tracks     = flag.Bool("tracks", false, "run detailed track assignment")
		wires      = flag.Bool("wires", false, "print the routed segments")
		draw       = flag.Bool("draw", false, "render the routed layout as ASCII art")
	)
	flag.Parse()
	if *input == "" {
		fmt.Fprintln(os.Stderr, "grouter: -input is required")
		flag.Usage()
		os.Exit(2)
	}
	f, err := os.Open(*input)
	if err != nil {
		fatal(err)
	}
	l, err := genroute.ReadLayout(f)
	f.Close()
	if err != nil {
		fatal(err)
	}
	s := l.Summary()
	fmt.Printf("layout %q: %d cells, %d nets, %d pins, %.1f%% utilization\n",
		l.Name, s.Cells, s.Nets, s.Pins, s.Utilization)

	opts := []genroute.Option{
		genroute.WithWorkers(*workers),
		genroute.WithPitch(*pitch),
		genroute.WithPenaltyWeight(*weight),
		genroute.WithMaxPasses(*passes),
		genroute.WithHistory(*history, *historyW),
		genroute.WithWeightStep(*weightStep),
	}
	if *corner {
		opts = append(opts, genroute.WithCornerRule())
	}
	prepStart := time.Now()
	e, err := genroute.NewEngine(l, opts...)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("session prepared in %v (validate + obstacle index + passage extraction)\n",
		time.Since(prepStart).Round(time.Millisecond))

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *congestion {
		res, err := e.RouteNegotiated(ctx)
		expired := errors.Is(err, context.DeadlineExceeded)
		if err != nil && !expired {
			fatal(err)
		}
		for i, p := range res.Passes {
			fmt.Printf("pass %d: length=%d overflow=%d (over %d passages), rerouted %d nets, routed %d/%d, %d layout expansions, pass took %v\n",
				i+1, p.TotalLength, p.Overflow, p.Overflowed,
				len(p.Rerouted), p.Routed, s.Nets, p.Stats.Expanded, p.Elapsed.Round(time.Microsecond))
		}
		switch {
		case expired:
			fmt.Printf("TIMEOUT after %v: partial result above (%d passes recorded, overflow %d); raise -timeout to finish\n",
				*timeout, len(res.Passes), e.Overflow())
			os.Exit(1)
		case res.Converged && len(res.Passes) == 1:
			fmt.Println("no congestion: single pass suffices")
		case res.Converged:
			fmt.Printf("converged: zero overflow after %d passes\n", len(res.Passes))
		case res.Stalled:
			fmt.Printf("stalled after %d passes with overflow %d (raise -weight or -history)\n",
				len(res.Passes), res.FinalMap().TotalOverflow())
		default:
			fmt.Printf("pass budget exhausted after %d passes with overflow %d\n",
				len(res.Passes), res.FinalMap().TotalOverflow())
		}
		report(l, res.Final(), *tracks, *wires, *draw)
		return
	}

	res, err := e.RouteAll(ctx)
	if errors.Is(err, context.DeadlineExceeded) {
		routed := len(res.Nets) - len(res.Failed)
		fmt.Printf("TIMEOUT after %v: %d/%d nets routed, partial length %d\n",
			*timeout, routed, len(res.Nets), res.TotalLength)
		os.Exit(1)
	}
	if err != nil {
		fatal(err)
	}
	report(l, res, *tracks, *wires, *draw)
}

// report prints the routing summary, optional tracks and wires.
func report(l *genroute.Layout, res *genroute.Result, tracks, wires, draw bool) {
	fmt.Printf("routed %d nets in %v: total length %d, %d expansions\n",
		len(res.Nets), res.Elapsed.Round(1000), res.TotalLength, res.Stats.Expanded)
	if len(res.Failed) > 0 {
		fmt.Printf("FAILED nets: %v\n", res.Failed)
	}
	if err := genroute.CheckConnectivity(l, res); err != nil {
		fmt.Printf("CONNECTIVITY ERROR: %v\n", err)
		os.Exit(1)
	}
	if tracks {
		tr := genroute.AssignTracks(res, 0)
		fmt.Printf("detailed: %d wires in %d channels, %d total tracks (max %d) in %v\n",
			tr.Wires, len(tr.Channels), tr.TotalTracks, tr.MaxTracks, tr.Elapsed.Round(1000))
	}
	if wires {
		for i := range res.Nets {
			nr := &res.Nets[i]
			fmt.Printf("net %s (length %d):\n", nr.Net, nr.Length)
			for _, seg := range nr.SortedSegments() {
				fmt.Printf("  %v\n", seg)
			}
		}
	}
	if draw {
		segs := make([][]genroute.Seg, len(res.Nets))
		for i := range res.Nets {
			segs[i] = res.Nets[i].Segments
		}
		fmt.Print(viz.Layout(l, segs, 0))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "grouter:", err)
	os.Exit(1)
}
