// Package genroute is a global router for general-cell (building-block /
// macro-cell) integrated-circuit layouts, reproducing Gary W. Clow's
// "A Global Routing Algorithm for General Cells" (DAC 1984).
//
// The router is gridless: no routing grid is assumed for either module
// placement or pin locations. Routes are found by A* search with
// ray-tracing successor generation — paths extend as far toward the goal
// as feasible and hug cell boundaries when obstacles intervene — so the
// search expands dramatically fewer nodes than Lee–Moore grid expansion
// while still returning minimal-length routes. Multi-terminal nets are
// approximated Steiner trees (tree segments are attachment points);
// multi-pin terminals group electrically equivalent pins. Every net is
// routed independently against the cells only, which eliminates net
// ordering and makes whole-layout routing embarrassingly parallel.
//
// # Quick start
//
//	l := &genroute.Layout{ ... cells, nets ... }
//	e, err := genroute.NewEngine(l)
//	res, err := e.RouteAll(ctx)
//
// An Engine is a prepared session: validation, the obstacle index and the
// congestion tables are built once, every flow (RouteAll, RouteNegotiated,
// AdjustPlacement, track/layer assignment) runs as a method sharing that
// state under a context.Context, and Edit opens an incremental ECO
// transaction that reroutes only what a layout change dirtied. See the
// examples directory for complete programs and DESIGN.md for the system
// architecture and the ECO semantics.
package genroute

import (
	"fmt"
	"io"
	"time"

	"repro/internal/adjust"
	"repro/internal/congest"
	"repro/internal/detail"
	"repro/internal/gen"
	"repro/internal/geom"
	"repro/internal/layout"
	"repro/internal/plane"
	"repro/internal/ray"
	"repro/internal/router"
	"repro/internal/search"
	"repro/internal/steiner"
)

// Re-exported model types. A Layout holds rectangular Cells and the Nets to
// connect; a Net has Terminals (connection targets); a Terminal has one or
// more electrically equivalent Pins.
type (
	// Layout is a complete routing problem.
	Layout = layout.Layout
	// Cell is a placed rectangular block.
	Cell = layout.Cell
	// Pin is a connection point on a cell boundary (or a pad).
	Pin = layout.Pin
	// Terminal groups the equivalent pins of one connection target.
	Terminal = layout.Terminal
	// Net is a set of terminals to be connected.
	Net = layout.Net
	// Point is an integer location on the routing plane.
	Point = geom.Point
	// Rect is an axis-aligned rectangle.
	Rect = geom.Rect
	// Seg is an axis-parallel wire segment.
	Seg = geom.Seg
	// Route is a single connection result.
	Route = router.Route
	// NetRoute is a routed net tree.
	NetRoute = router.NetRoute
	// Result aggregates the routes of a whole layout.
	Result = router.LayoutResult
	// GenConfig parameterizes the random layout generator.
	GenConfig = gen.Config
	// CongestionResult reports a two-pass congestion-aware run.
	CongestionResult = congest.PassResult
	// TrackResult reports detailed-routing track assignment.
	TrackResult = detail.Result
)

// NoCell marks a pad pin that belongs to the chip boundary.
const NoCell = layout.NoCell

// Pt constructs a Point.
func Pt(x, y int64) Point { return geom.Pt(x, y) }

// R constructs a Rect from any two opposite corners.
func R(x0, y0, x1, y1 int64) Rect { return geom.R(x0, y0, x1, y1) }

// Default congestion parameters applied by NewEngine when the matching
// option is not given; they mirror the grouter CLI defaults.
const (
	// DefaultPitch is the wire pitch used for passage capacity.
	DefaultPitch = 4
	// DefaultPenaltyWeight is the detour accepted per congested crossing.
	DefaultPenaltyWeight = 100
)

// config collects the unified option set shared by Engine and the legacy
// Router facade: base routing options, the congestion/negotiation
// parameters (formerly CongestionConfig), the placement-adjustment budget
// (formerly adjust.Options) and the progress observer.
type config struct {
	opts        router.Options
	workers     int
	cornerRule  bool
	congest     congest.Config
	adjustIters int
	progress    ProgressFunc
	ckptPath    string
	ckptEvery   int
	jrnlPath    string
	jrnlRecords int
	jrnlBytes   int64
}

// newConfig applies the options over the engine defaults.
func newConfig(opts []Option) config {
	cfg := config{
		congest: congest.Config{
			Pitch:       DefaultPitch,
			Weight:      DefaultPenaltyWeight,
			MaxPasses:   congest.DefaultMaxPasses,
			HistoryGain: 1,
		},
	}
	for _, o := range opts {
		o(&cfg)
	}
	return cfg
}

// Option customizes an Engine (or the legacy Router facade, which ignores
// the congestion, adjustment and progress options). The one set covers
// every flow: base routing, negotiated congestion, ECO repair and
// placement adjustment.
type Option func(*config)

// WithCornerRule enables the paper's inverted-corner ε rule: among
// equal-length routes the router prefers bends that hug cell boundaries
// (Figure 2).
func WithCornerRule() Option {
	return func(c *config) { c.cornerRule = true }
}

// WithAllDirs switches the successor generator to cast rays in all four
// directions from every node (a denser search graph; used by the
// ablations).
func WithAllDirs() Option {
	return func(c *config) { c.opts.Mode = ray.AllDirs }
}

// WithWorkers sets the number of concurrent net-routing workers for
// RouteAll and the first negotiation pass; n <= 0 uses GOMAXPROCS.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithMaxExpansions bounds search effort per connection.
func WithMaxExpansions(n int) Option {
	return func(c *config) { c.opts.MaxExpansions = n }
}

// WithPitch sets the wire pitch that derives passage capacity for the
// congestion, ECO and adjustment flows (default DefaultPitch).
func WithPitch(pitch int64) Option {
	return func(c *config) { c.congest.Pitch = pitch }
}

// WithPenaltyWeight sets the base detour, in length units, a route accepts
// to avoid one congested crossing (default DefaultPenaltyWeight).
func WithPenaltyWeight(w int64) Option {
	return func(c *config) { c.congest.Weight = w }
}

// WithMaxPasses bounds the negotiation loop, counting the initial route as
// pass 1 (default congest.DefaultMaxPasses).
func WithMaxPasses(n int) Option {
	return func(c *config) { c.congest.MaxPasses = n }
}

// WithHistory configures the PathFinder history term: gain scales the
// accumulated per-passage overflow history in the penalty (0 disables
// history, reproducing the paper's plain present-cost penalty; the default
// is 1), and weight, when positive, decouples the history step from the
// present weight (see CongestionConfig.HistoryWeight).
func WithHistory(gain int, weight int64) Option {
	return func(c *config) {
		c.congest.HistoryGain = gain
		c.congest.HistoryWeight = weight
	}
}

// WithWeightStep enables the escalating present-cost schedule: the price of
// an over-capacity crossing rises by step every reroute pass (see
// CongestionConfig.WeightStep).
func WithWeightStep(step int64) Option {
	return func(c *config) { c.congest.WeightStep = step }
}

// WithCheckpointFile makes RouteNegotiated (and ResumeNegotiated) persist a
// restartable checkpoint to path at every pass boundary and, when every > 0,
// after every `every` rip-ups within a pass. Writes are atomic (temp file +
// rename), so a crash at any instant leaves either the previous or the new
// checkpoint, never a torn one. A run resumed from the file with
// Engine.ResumeNegotiated produces byte-identical routes to the
// uninterrupted run.
func WithCheckpointFile(path string, every int) Option {
	return func(c *config) {
		c.ckptPath = path
		c.ckptEvery = every
	}
}

// WithAdjustIters bounds the placement-adjustment feedback loop (default
// 10 iterations).
func WithAdjustIters(n int) Option {
	return func(c *config) { c.adjustIters = n }
}

// WithProgress installs an observer that receives a Progress event after
// every completed pass of the negotiation, ECO repair and whole-layout
// routing flows. The observer runs inline on the routing goroutine — keep
// it cheap.
func WithProgress(fn ProgressFunc) Option {
	return func(c *config) { c.progress = fn }
}

// WithTrace installs per-node search observers: onExpand receives every
// expanded search point with its accumulated cost, onGenerate every newly
// generated successor (either may be nil). This is the hook behind the
// Figure 1 expansion traces; the callbacks run inline on the search hot
// path.
func WithTrace(onExpand, onGenerate func(Point, int64)) Option {
	return func(c *config) {
		if onExpand != nil {
			c.opts.OnExpand = func(p geom.Point, g search.Cost) { onExpand(p, g) }
		}
		if onGenerate != nil {
			c.opts.OnGenerate = func(p geom.Point, g search.Cost) { onGenerate(p, g) }
		}
	}
}

// Progress is one observation of engine activity, delivered to the
// WithProgress observer after each completed pass.
type Progress struct {
	// Phase names the flow: "route" (RouteAll), "negotiate"
	// (RouteNegotiated) or "eco" (Edit.Commit repair).
	Phase string
	// Pass is the 1-based pass number within the phase.
	Pass int
	// Overflow is the total passage overflow after the pass; Overflowed
	// counts the passages over capacity.
	Overflow, Overflowed int
	// NetsRouted counts fully routed nets after the pass, out of NetsTotal.
	NetsRouted, NetsTotal int
	// Rerouted counts the nets ripped up and rerouted in the pass.
	Rerouted int
	// Expanded is the whole-layout search effort after the pass.
	Expanded int
	// Elapsed is the wall-clock time of the pass.
	Elapsed time.Duration
}

// ProgressFunc observes engine progress (see WithProgress).
type ProgressFunc func(Progress)

// Router routes a validated layout.
//
// Deprecated: use Engine, which shares one prepared session across every
// flow and adds context cancellation, progress observation and ECO
// editing. Router remains as a thin compatibility facade.
type Router struct {
	l          *Layout
	ix         *plane.Index
	r          *router.Router
	workers    int
	cornerRule bool
}

// NewRouter validates the layout (the paper's three placement restrictions
// plus pin well-formedness) and builds a router over it.
//
// Deprecated: use NewEngine.
func NewRouter(l *Layout, opts ...Option) (*Router, error) {
	if err := l.Validate(); err != nil {
		return nil, err
	}
	ix, err := plane.FromLayout(l)
	if err != nil {
		return nil, err
	}
	cfg := newConfig(opts)
	if cfg.cornerRule {
		cfg.opts.Cost = router.CornerCost{Ix: ix}
	}
	r := &Router{l: l, ix: ix, workers: cfg.workers, cornerRule: cfg.cornerRule}
	r.r = router.New(ix, cfg.opts)
	return r, nil
}

// RouteAll routes every net independently (concurrently when workers > 1).
func (r *Router) RouteAll() (*Result, error) {
	return r.r.RouteLayout(r.l, r.workers)
}

// RouteNet routes one net by name.
func (r *Router) RouteNet(name string) (NetRoute, error) {
	for i := range r.l.Nets {
		if r.l.Nets[i].Name == name {
			return r.r.RouteNet(&r.l.Nets[i])
		}
	}
	return NetRoute{}, fmt.Errorf("genroute: no net %q", name)
}

// RoutePoints routes between two arbitrary points, avoiding all cells.
func (r *Router) RoutePoints(a, b Point) (Route, error) {
	return r.r.RoutePoints(a, b)
}

// Validate checks a routed net tree against the layout geometry.
func (r *Router) Validate(nr *NetRoute) error {
	return r.r.Validate(nr)
}

// CheckConnectivity verifies that a layout result physically connects every
// net: all terminals of each net must be joined through wire segments,
// where any pin of a multi-pin terminal counts as a connection point.
func CheckConnectivity(l *Layout, res *Result) error {
	if len(res.Nets) != len(l.Nets) {
		return fmt.Errorf("genroute: result has %d nets, layout %d", len(res.Nets), len(l.Nets))
	}
	for i := range l.Nets {
		nr := &res.Nets[i]
		if !nr.Found {
			continue // failures are reported, not connectivity errors
		}
		if err := netConnected(&l.Nets[i], nr.Segments); err != nil {
			return fmt.Errorf("net %q: %w", l.Nets[i].Name, err)
		}
	}
	return nil
}

// netConnected checks one net: union terminals and segments through
// shared points; every terminal must land in one component.
func netConnected(n *Net, segs []Seg) error {
	nTerm := len(n.Terminals)
	nodes := nTerm + len(segs)
	parent := make([]int, nodes)
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) { parent[find(a)] = find(b) }
	// Segment-segment adjacency.
	for i := range segs {
		for j := i + 1; j < len(segs); j++ {
			if segs[i].Intersects(segs[j]) {
				union(nTerm+i, nTerm+j)
			}
		}
	}
	// Terminal-segment and terminal-terminal adjacency via pins.
	for ti := range n.Terminals {
		for _, p := range n.Terminals[ti].Pins {
			for si := range segs {
				if segs[si].Contains(p.Pos) {
					union(ti, nTerm+si)
				}
			}
			for tj := ti + 1; tj < nTerm; tj++ {
				for _, q := range n.Terminals[tj].Pins {
					if p.Pos == q.Pos {
						union(ti, tj)
					}
				}
			}
		}
	}
	for ti := 1; ti < nTerm; ti++ {
		if find(ti) != find(0) {
			return fmt.Errorf("terminal %q not connected", n.Terminals[ti].Name)
		}
	}
	return nil
}

// CongestionConfig parameterizes the negotiated-congestion engine: Pitch
// sets passage capacity, Weight the base detour per congested crossing,
// MaxPasses the pass budget, Workers the reroute parallelism, and
// HistoryGain the PathFinder-style accumulated-overflow term (0 reproduces
// the paper's plain penalty).
type CongestionConfig = congest.Config

// NegotiatedResult reports an N-pass negotiated-congestion run: per-pass
// overflow/length/effort summaries, the full routing state and congestion
// map after every pass, and whether the loop converged to zero overflow.
type NegotiatedResult = congest.NegotiateResult

// RouteNegotiated iterates the paper's congestion loop to convergence:
// route every net, measure passage overflow, reroute the affected nets with
// a present-plus-history penalty, and repeat until overflow reaches zero or
// the pass budget runs out. Reroute passes parallelize across cfg.Workers
// with results independent of the worker count.
//
// Deprecated: use Engine.RouteNegotiated, which reuses the session's
// prepared index and tables, accepts a context and feeds the progress
// observer. This wrapper rebuilds everything per call.
func RouteNegotiated(l *Layout, cfg CongestionConfig) (*NegotiatedResult, error) {
	return congest.Negotiate(l, cfg)
}

// RouteWithCongestion runs the paper's two-pass congestion flow: route all
// nets, find overflowed passages at the given wiring pitch, and reroute the
// affected nets with a penalty of `weight` length units per congested
// crossing. It is a thin wrapper over the two-pass, zero-history special
// case of RouteNegotiated.
//
// Deprecated: use Engine.RouteNegotiated with WithMaxPasses(2) and
// WithHistory(0, 0).
func RouteWithCongestion(l *Layout, pitch, weight int64, workers int) (*CongestionResult, error) {
	return congest.TwoPass(l, pitch, weight, workers)
}

// AssignTracks runs the detailed-routing stage over a routed layout:
// dynamic channel formation by net interference, then left-edge track
// assignment. window is the interference proximity (0 for the default).
//
// Deprecated: use Engine.AssignTracks, which runs over the session's
// current routing state.
func AssignTracks(res *Result, window int64) *TrackResult {
	return detail.Assign(res, detail.Options{Window: window})
}

// LayerResult reports two-layer HV assignment with via counts.
type LayerResult = detail.LayerAssignment

// AssignLayers applies the classical two-layer discipline (horizontal wires
// on one layer, vertical on the other) and counts the vias every layer
// change requires — the "layer assignment" half of the paper's detailed
// phase.
//
// Deprecated: use Engine.AssignLayers, which runs over the session's
// current routing state.
func AssignLayers(res *Result) *LayerResult {
	return detail.AssignLayers(res)
}

// AdjustResult reports the placement-adjustment feedback loop.
type AdjustResult = adjust.Result

// AdjustPlacement runs the spacing feedback loop the paper's introduction
// describes: route, measure passage congestion, widen overflowed passages
// by shifting cells apart (growing the die), and repeat until the routing
// fits or the iteration budget runs out. The input layout is not modified;
// the adjusted placement is returned in the result.
//
// Deprecated: use Engine.AdjustPlacement, which accepts a context and takes
// its parameters from the unified option set.
func AdjustPlacement(l *Layout, pitch int64, maxIters, workers int) (*AdjustResult, error) {
	return adjust.Run(l, adjust.Options{Pitch: pitch, MaxIters: maxIters, Workers: workers})
}

// Random generates a random validated layout (see GenConfig).
func Random(cfg GenConfig) (*Layout, error) { return gen.RandomLayout(cfg) }

// PolyChip generates a layout mixing rectangular and orthogonal-polygon
// (L/U/T) cells — the paper's polygon extension workload.
func PolyChip(seed int64, cells, nets int) (*Layout, error) {
	return gen.PolyChip(seed, cells, nets)
}

// GridOfMacros generates a rows x cols macro array with bus and control
// nets.
func GridOfMacros(rows, cols int, cellW, cellH, gap int64, seed int64) (*Layout, error) {
	return gen.GridOfMacros(rows, cols, cellW, cellH, gap, seed)
}

// MacroGrid generates the macro-scale datapath workload: a rows x cols
// macro array with horizontal and vertical neighbor buses, column control
// nets, and cross-chip nets (32x32 gives 1024 cells and over 2000 nets).
func MacroGrid(rows, cols int, cellW, cellH, gap int64, seed int64) (*Layout, error) {
	return gen.MacroGrid(rows, cols, cellW, cellH, gap, seed)
}

// PadRing generates a pad ring around a random core.
func PadRing(pads, coreCells int, seed int64) (*Layout, error) {
	return gen.PadRing(pads, coreCells, seed)
}

// ReadLayout decodes and validates a JSON layout.
func ReadLayout(r io.Reader) (*Layout, error) { return layout.ReadJSON(r) }

// WriteLayout encodes a layout as JSON.
func WriteLayout(w io.Writer, l *Layout) error { return l.WriteJSON(w) }

// TreeLowerBound returns a lower bound on the Steiner tree length for a set
// of points (max of the half-perimeter and Hwang bounds) — useful for
// judging route quality.
func TreeLowerBound(pts []Point) int64 { return steiner.RSMTLowerBound(pts) }
