package genroute

import (
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"repro/internal/congest"
	"repro/internal/faultinject"
	"repro/internal/plane"
	"repro/internal/router"
	"repro/internal/snapshot"
)

// Typed persistence errors, for errors.Is. Save/LoadEngine and the
// checkpoint flows fail closed: a snapshot that cannot be proven to match
// is rejected with one of these rather than producing a silently wrong
// session.
var (
	// ErrSnapshotFormat marks a stream that is not a snapshot at all.
	ErrSnapshotFormat = snapshot.ErrFormat
	// ErrSnapshotVersion marks a snapshot from an incompatible codec
	// version (version skew across builds).
	ErrSnapshotVersion = snapshot.ErrVersion
	// ErrSnapshotChecksum marks a snapshot whose payload checksum fails.
	ErrSnapshotChecksum = snapshot.ErrChecksum
	// ErrSnapshotCorrupt marks a checksummed payload that does not decode.
	ErrSnapshotCorrupt = snapshot.ErrCorrupt
	// ErrSnapshotLayout marks a snapshot or checkpoint applied to a layout
	// (or pitch) other than the one it was saved over.
	ErrSnapshotLayout = snapshot.ErrLayout
)

// layoutHash memoizes the session layout's fingerprint; ECO commits reset
// the memo because they mutate the layout. (A genuine hash of 0 only costs
// a recompute, never a wrong value; the memo is atomic so concurrent
// readers can race on it benignly.)
func (e *Engine) layoutHash() uint64 {
	if h := e.lhash.Load(); h != 0 {
		return h
	}
	h := snapshot.LayoutHash(e.l)
	e.lhash.Store(h)
	return h
}

// Save serializes the prepared session to w: the layout fingerprint, the
// congestion pitch and passage tables, and — when the session has routed —
// the per-net routes and overflow history. The obstacle index, interval
// trees and memoized validation geometry are NOT serialized: they are
// deterministic functions of the layout and rebuilding them is far cheaper
// than re-validating, so LoadEngine reconstructs them from the layout it is
// handed and uses the embedded fingerprint to prove that layout is
// byte-identical to the validated one saved over.
func (e *Engine) Save(w io.Writer) error {
	e.mu.RLock()
	defer e.mu.RUnlock()
	return e.saveLocked(w)
}

// LoadEngine rebuilds a prepared session from a snapshot written by Save.
// l must be the same layout the snapshot was saved over: it is fingerprinted
// (after normalizing bare polygon boxes, as Validate would) and any drift
// fails closed with ErrSnapshotLayout. The match is also what makes the
// warm start fast — the saved layout passed Validate, so a byte-identical
// layout need not be re-validated, and the obstacle index is rebuilt
// directly from the cells.
//
// The snapshot's pitch overrides any WithPitch option: the serialized
// passage capacities were extracted at that pitch, and a session must stay
// consistent with its own tables. Other options apply as in NewEngine.
func LoadEngine(r io.Reader, l *Layout, opts ...Option) (*Engine, error) {
	sess, err := snapshot.DecodeSession(r)
	if err != nil {
		return nil, err
	}
	lc := l.Clone()
	lc.NormalizeBoxes()
	if h := snapshot.LayoutHash(lc); h != sess.LayoutHash {
		return nil, fmt.Errorf("%w: layout %q fingerprints %016x, snapshot was saved over %016x",
			ErrSnapshotLayout, l.Name, h, sess.LayoutHash)
	}
	cfg := newConfig(opts)
	cfg.congest.Pitch = sess.Pitch
	e := &Engine{l: lc, cfg: cfg}
	e.lhash.Store(sess.LayoutHash)
	if e.ix, e.spans, err = plane.FromLayoutSpans(e.l); err != nil {
		return nil, err
	}
	if e.cfg.cornerRule {
		e.cfg.opts.Cost = router.CornerCost{Ix: e.ix}
	}
	e.r = router.New(e.ix, e.cfg.opts)
	e.passages = sess.Passages
	e.reindexNets()
	if sess.Routed {
		if len(sess.Nets) != len(lc.Nets) {
			return nil, fmt.Errorf("%w: snapshot routes %d nets, layout has %d",
				ErrSnapshotCorrupt, len(sess.Nets), len(lc.Nets))
		}
		res := &router.LayoutResult{Nets: sess.Nets}
		for i := range res.Nets {
			res.Nets[i].Net = lc.Nets[i].Name
		}
		res.Finalize(time.Now())
		e.setState(res, congest.BuildMap(e.passages, netSegments(res)), sess.History)
	}
	return e, nil
}

// Checkpoint is a decoded negotiation checkpoint (see ReadCheckpoint and
// Engine.ResumeNegotiated). It is opaque apart from a few read-only
// descriptors for reporting.
type Checkpoint struct {
	f *snapshot.CheckpointFile
}

// Passes reports how many negotiation passes were recorded when the
// checkpoint was taken.
func (cp *Checkpoint) Passes() int { return cp.f.CP.PassesRecorded }

// InPass reports whether the checkpoint was taken mid-pass (true) or at a
// pass boundary.
func (cp *Checkpoint) InPass() bool { return cp.f.CP.InPass }

// ReadCheckpoint decodes a checkpoint file written by a session configured
// with WithCheckpointFile.
func ReadCheckpoint(r io.Reader) (*Checkpoint, error) {
	f, err := snapshot.DecodeCheckpoint(r)
	if err != nil {
		return nil, err
	}
	return &Checkpoint{f: f}, nil
}

// ResumeNegotiated continues a negotiation run from a checkpoint taken over
// this session's layout and pitch (anything else fails closed with
// ErrSnapshotLayout). The resumed run is byte-identical to the
// uninterrupted one: it finishes the interrupted pass from the exact rip it
// stopped at and continues under the original pass budget. The returned
// result covers the resumed portion only; the session's state is installed
// exactly as RouteNegotiated would.
func (e *Engine) ResumeNegotiated(ctx context.Context, cp *Checkpoint) (*NegotiatedResult, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if cp.f.LayoutHash != e.layoutHash() {
		return nil, fmt.Errorf("%w: checkpoint was taken over a different layout", ErrSnapshotLayout)
	}
	if cp.f.Pitch != e.cfg.congest.Pitch {
		return nil, fmt.Errorf("%w: checkpoint pitch %d, session pitch %d",
			ErrSnapshotLayout, cp.f.Pitch, e.cfg.congest.Pitch)
	}
	inner := cp.f.CP
	if len(inner.Nets) != len(e.l.Nets) {
		return nil, fmt.Errorf("%w: checkpoint routes %d nets, layout has %d",
			ErrSnapshotLayout, len(inner.Nets), len(e.l.Nets))
	}
	// The codec does not store net names; they are positional in the
	// layout the checkpoint belongs to.
	nets := make([]router.NetRoute, len(inner.Nets))
	copy(nets, inner.Nets)
	for i := range nets {
		nets[i].Net = e.l.Nets[i].Name
	}
	inner.Nets = nets
	res, err := congest.NegotiateResume(ctx, e.l, e.ix, e.passages, e.negotiateConfig(), &inner)
	e.installNegotiated(res, err)
	return res, err
}

// negotiateConfig assembles the congest.Config for a (fresh or resumed)
// negotiation run: congestion parameters, workers, base router options,
// the progress adapter and — with WithCheckpointFile — the atomic
// checkpoint writer.
func (e *Engine) negotiateConfig() congest.Config {
	ccfg := e.cfg.congest
	ccfg.Workers = e.cfg.workers
	ccfg.BaseOptions = e.cfg.opts // corner rule, mode, budget, trace hooks
	if e.cfg.progress != nil {
		total := len(e.l.Nets)
		ccfg.OnPass = func(n int, p congest.Pass) {
			e.emit(passProgress("negotiate", n, p, total))
		}
	}
	if e.cfg.ckptPath != "" {
		path := e.cfg.ckptPath
		ccfg.CheckpointEvery = e.cfg.ckptEvery
		ccfg.Checkpoint = func(cp *congest.Checkpoint) error {
			return writeCheckpointFile(path, &snapshot.CheckpointFile{
				LayoutHash: e.layoutHash(),
				Pitch:      e.cfg.congest.Pitch,
				CP:         *cp,
			})
		}
	}
	return ccfg
}

// installNegotiated installs a negotiation result as the session state. A
// completed run installs its final pass. An interrupted run (cancellation
// or deadline expiry) installs the best recorded pass — minimum overflow,
// most nets routed — rather than the last partial one: overflow is not
// monotone across passes, and the best state seen is what a deadline-bound
// caller wants to keep. The History installed is the whole run's (it
// accrues monotonically and seeds any follow-up negotiation).
func (e *Engine) installNegotiated(res *congest.NegotiateResult, err error) {
	if res == nil || len(res.Results) == 0 {
		return
	}
	k := len(res.Results) - 1
	if err != nil {
		if b := res.BestPass(); b >= 0 {
			k = b
		}
	}
	e.setState(res.Results[k], res.Maps[k].Clone(), append([]int(nil), res.History...))
}

// SaveFile writes the session snapshot (see Save) to path atomically:
// encode to a temp file in the target directory, fsync, then rename over
// the destination. A crash or failure mid-write leaves any previous file
// intact and never a torn or temp file.
func (e *Engine) SaveFile(path string) error {
	return atomicWrite(path, e.Save)
}

// LoadEngineFile rebuilds a prepared session from a snapshot file written
// by SaveFile (see LoadEngine for the matching and option semantics).
func LoadEngineFile(path string, l *Layout, opts ...Option) (*Engine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadEngine(f, l, opts...)
}

// writeCheckpointFile writes a checkpoint atomically (see atomicWrite) — a
// crash mid-write leaves the previous checkpoint intact, never a torn one.
func writeCheckpointFile(path string, cf *snapshot.CheckpointFile) error {
	return atomicWrite(path, func(w io.Writer) error {
		return snapshot.EncodeCheckpoint(w, cf)
	})
}

// atomicWrite replaces path atomically: write encodes into a temp file in
// the same directory, which is fsynced and renamed over the destination
// only if every step succeeded. On any error — or a panic inside write —
// the temp file is removed, so a failed replacement leaves the previous
// file intact and no *.tmp-* litter behind. Every write passes through the
// faultinject.SnapshotWrite seam so tests can fail the encode mid-stream.
func atomicWrite(path string, write func(io.Writer) error) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	name := tmp.Name()
	committed := false
	defer func() {
		if !committed {
			tmp.Close() // double Close on the error paths below is harmless
			os.Remove(name)
		}
	}()
	if err := write(faultableWriter{w: tmp, label: path}); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(name, path); err != nil {
		return err
	}
	committed = true
	return nil
}

// faultableWriter interposes the SnapshotWrite fault seam before each
// underlying write (a no-op atomic load unless a test hook is installed).
type faultableWriter struct {
	w     io.Writer
	label string
}

func (fw faultableWriter) Write(p []byte) (int, error) {
	if err := faultinject.Fire(faultinject.SnapshotWrite, fw.label); err != nil {
		return 0, err
	}
	return fw.w.Write(p)
}
