package genroute

import (
	"context"
	"errors"
	"strings"
	"testing"

	"repro/internal/faultinject"
)

// The fault matrix: every injection seam (per-net route, search loop,
// negotiator rip, ECO commit) exercised with both injected errors and
// panics, asserting the engine degrades per contract — poisoned nets are
// isolated, hard errors fail closed — and stays usable afterwards.
// faultinject is process-global, so none of these tests run in parallel.

// TestEngineRouteAllIsolatesNetPanic: a panic routing one net surfaces in
// Result.Panics, the net is reported failed, and every other net routes.
func TestEngineRouteAllIsolatesNetPanic(t *testing.T) {
	victim := netName(3)
	restore := faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
		if s.Point == faultinject.RouteNet && s.Label == victim {
			return faultinject.Panic
		}
		return faultinject.None
	})
	defer restore()

	e, err := NewEngine(funnelLayout(8), WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteAll(context.Background())
	if err != nil {
		t.Fatalf("a single poisoned net must not fail the run: %v", err)
	}
	if len(res.Panics) != 1 || res.Panics[0].Net != victim {
		t.Fatalf("panics = %+v, want exactly one for %q", res.Panics, victim)
	}
	if len(res.Panics[0].Stack) == 0 {
		t.Fatal("recovered panic carries no stack")
	}
	if len(res.Failed) != 1 || res.Failed[0] != victim {
		t.Fatalf("failed = %v, want [%s]", res.Failed, victim)
	}
	for i := range res.Nets {
		if res.Nets[i].Net != victim && !res.Nets[i].Found {
			t.Fatalf("healthy net %q not routed", res.Nets[i].Net)
		}
	}
	checkEngineConsistency(t, e)

	// Disarmed, the engine routes the poisoned net — nothing leaked.
	restore()
	nr, err := e.RouteNet(context.Background(), victim)
	if err != nil || !nr.Found {
		t.Fatalf("engine unusable after recovered panic: %v", err)
	}
	if res, err := e.RouteAll(context.Background()); err != nil || len(res.Failed) != 0 {
		t.Fatalf("full reroute after recovery: %v (failed %v)", err, res.Failed)
	}
}

// TestEngineRouteAllInjectedErrorFailsClosed: a non-panic error from a
// net route is a hard failure — no partial result, no installed state.
func TestEngineRouteAllInjectedErrorFailsClosed(t *testing.T) {
	victim := netName(2)
	restore := faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
		if s.Point == faultinject.RouteNet && s.Label == victim {
			return faultinject.Error
		}
		return faultinject.None
	})
	defer restore()

	e, err := NewEngine(funnelLayout(8), WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteAll(context.Background())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if res != nil {
		t.Fatal("failed run returned a result")
	}
	if e.Routed() {
		t.Fatal("failed run installed session state")
	}
	restore()
	if res, err := e.RouteAll(context.Background()); err != nil || len(res.Failed) != 0 {
		t.Fatalf("engine unusable after injected error: %v", err)
	}
}

// TestEngineSearchSeamPanicIsolated: a panic at the deepest seam — inside
// the search expansion loop — is still recovered by the per-net guard.
func TestEngineSearchSeamPanicIsolated(t *testing.T) {
	// The search seam has no net label; a stateful hook poisons only the
	// first search. Workers(1) makes that deterministically the first net.
	fired := false
	defer faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
		if s.Point == faultinject.Search && !fired {
			fired = true
			return faultinject.Panic
		}
		return faultinject.None
	})()

	e, err := NewEngine(funnelLayout(8), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteAll(context.Background())
	if err != nil {
		t.Fatalf("a poisoned search must not fail the run: %v", err)
	}
	if len(res.Panics) != 1 || res.Panics[0].Net != netName(0) {
		t.Fatalf("panics = %+v, want one for the first net", res.Panics)
	}
	if routed := len(res.Nets) - len(res.Failed); routed != 7 {
		t.Fatalf("routed %d nets, want 7", routed)
	}
	checkEngineConsistency(t, e)
}

// TestEngineNegotiateReroutePanicDegrades: a net whose reroute panics keeps
// its previous route while the negotiation drains around it.
func TestEngineNegotiateReroutePanicDegrades(t *testing.T) {
	victim := netName(5)
	restore := faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
		if s.Point == faultinject.Reroute && s.Label == victim {
			return faultinject.Panic
		}
		return faultinject.None
	})
	defer restore()

	e, err := NewEngine(funnelLayout(8), persistOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteNegotiated(context.Background())
	if err != nil {
		t.Fatalf("poisoned reroute must not fail the run: %v", err)
	}
	if len(res.Panics) == 0 {
		t.Fatal("no recorded panic")
	}
	for _, pe := range res.Panics {
		if pe.Net != victim {
			t.Fatalf("panic attributed to %q, want %q", pe.Net, victim)
		}
	}
	final := res.Final()
	for i := range final.Nets {
		if !final.Nets[i].Found {
			t.Fatalf("net %q lost its route", final.Nets[i].Net)
		}
	}
	checkEngineConsistency(t, e)
	restore()
	// The degraded session still negotiates cleanly afterwards.
	if _, err := e.RouteNegotiated(context.Background()); err != nil {
		t.Fatalf("engine unusable after degraded run: %v", err)
	}
	checkEngineConsistency(t, e)
}

// TestEngineNegotiateInjectedRerouteErrorFailsClosed: a hard (non-panic)
// reroute error aborts the negotiation without installing state.
func TestEngineNegotiateInjectedRerouteErrorFailsClosed(t *testing.T) {
	victim := netName(4)
	restore := faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
		if s.Point == faultinject.Reroute && s.Label == victim {
			return faultinject.Error
		}
		return faultinject.None
	})
	defer restore()

	e, err := NewEngine(funnelLayout(8), persistOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.RouteNegotiated(context.Background())
	if !errors.Is(err, faultinject.ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	if res != nil {
		t.Fatal("aborted negotiation returned a result")
	}
	if e.Routed() {
		t.Fatal("aborted negotiation installed state")
	}
	restore()
	if _, err := e.RouteNegotiated(context.Background()); err != nil {
		t.Fatalf("engine unusable after aborted negotiation: %v", err)
	}
	checkEngineConsistency(t, e)
}

// TestECOCommitFaultsLeaveEngineUntouched drives the two commit seams —
// after validation, and immediately before install — with errors and a
// panic: every failure mode must leave layout, routes, and overflow
// exactly as they were, and the engine must still commit once disarmed.
func TestECOCommitFaultsLeaveEngineUntouched(t *testing.T) {
	e, err := NewEngine(funnelLayout(8), persistOpts()...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RouteNegotiated(context.Background()); err != nil {
		t.Fatal(err)
	}
	wantBox := e.Layout().Cells[0].Box
	wantLen := e.Result().TotalLength
	wantOverflow := e.Overflow()

	checkUntouched := func(t *testing.T) {
		t.Helper()
		if e.Layout().Cells[0].Box != wantBox {
			t.Fatal("failed commit mutated the layout")
		}
		if e.Result().TotalLength != wantLen || e.Overflow() != wantOverflow {
			t.Fatal("failed commit mutated the session state")
		}
		checkEngineConsistency(t, e)
	}

	for _, label := range []string{"validated", "install"} {
		t.Run("error-at-"+label, func(t *testing.T) {
			label := label
			defer faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
				if s.Point == faultinject.Commit && s.Label == label {
					return faultinject.Error
				}
				return faultinject.None
			})()
			tx := e.Edit()
			if err := tx.MoveCell("lower", 2, 0); err != nil {
				t.Fatal(err)
			}
			res, err := tx.Commit(context.Background())
			if !errors.Is(err, faultinject.ErrInjected) {
				t.Fatalf("err = %v, want ErrInjected", err)
			}
			if res != nil {
				t.Fatal("failed commit returned a result")
			}
			checkUntouched(t)
		})
	}

	t.Run("panic-before-install", func(t *testing.T) {
		defer faultinject.Enable(func(s faultinject.Site) faultinject.Fault {
			if s.Point == faultinject.Commit && s.Label == "install" {
				return faultinject.Panic
			}
			return faultinject.None
		})()
		tx := e.Edit()
		if err := tx.MoveCell("lower", 2, 0); err != nil {
			t.Fatal(err)
		}
		res, err := tx.Commit(context.Background())
		if err == nil || !strings.Contains(err.Error(), "ECO commit panicked") {
			t.Fatalf("err = %v, want the recovered-panic error", err)
		}
		if res != nil {
			t.Fatal("panicked commit returned a result")
		}
		checkUntouched(t)
	})

	t.Run("disarmed-commit-succeeds", func(t *testing.T) {
		tx := e.Edit()
		if err := tx.MoveCell("lower", 2, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := tx.Commit(context.Background()); err != nil {
			t.Fatalf("commit after recovered faults: %v", err)
		}
		if e.Layout().Cells[0].Box == wantBox {
			t.Fatal("successful commit did not move the cell")
		}
		checkEngineConsistency(t, e)
	})
}
